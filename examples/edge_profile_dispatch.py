#!/usr/bin/env python
"""Edge-profile an interpreter dispatch loop (the Figure 14 use case).

Multiple-path execution and trace formation (Section 2) need to know
which control-flow edges dominate.  Here a SimpleAlpha dispatch loop
jumps through a handler table with a skewed opcode distribution; the
hardware profiler identifies the hot ``<branch PC, target PC>`` edges
entirely in hardware, and we compare the captured edge ranking against
the true one.
"""

from collections import Counter

from repro.core import IntervalSpec, best_multi_hash
from repro.core.tuples import EventKind
from repro.profiling import ProfilingSession, trace_events
from repro.simulator import dispatch_program


def main() -> None:
    program = dispatch_program(num_handlers=8, code_length=256,
                               iterations=30, hot_mass=0.85, seed=12)
    dispatch_pc = program.address_of("dispatch")
    trace = trace_events(program, EventKind.EDGE)
    print(f"recorded {len(trace)} control-flow edges")

    spec = IntervalSpec(length=5_000, threshold=0.01)
    config = best_multi_hash(spec, total_entries=512)
    result = ProfilingSession(config, keep_profiles=True).run(trace)
    print(f"profiled {result.summary.num_intervals} intervals; net error "
          f"{result.summary.percent():.2f}%")

    profile = result.single().profiles[0]
    hot_dispatch = [(edge, count)
                    for edge, count in profile.candidates.items()
                    if edge[0] == dispatch_pc]
    hot_dispatch.sort(key=lambda kv: -kv[1])

    true_counts = Counter(edge for edge in trace.slice(0, spec.length)
                          if edge[0] == dispatch_pc)
    print("\nhot dispatch edges (hardware profile vs true count, "
          "interval 0):")
    for (pc, target), count in hot_dispatch:
        print(f"  dispatch -> {target:#07x}: "
              f"profiled={count:5d} true={true_counts[(pc, target)]:5d}")

    captured = {edge for edge, _ in hot_dispatch}
    true_hot = {edge for edge, count in true_counts.items()
                if count >= spec.threshold_count}
    recall = len(captured & true_hot) / max(1, len(true_hot))
    print(f"\nhot-edge recall in interval 0: {100 * recall:.0f}%")


if __name__ == "__main__":
    main()
