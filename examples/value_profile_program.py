#!/usr/bin/env python
"""Value-profile a real program running on the SimpleAlpha simulator.

This is the paper's end-to-end deployment story: a program executes, the
hardware profiler watches committed loads, and at each interval boundary
the accumulator table holds the frequent ``<load PC, value>`` tuples --
the inputs a value-specialization or frequent-value-compression engine
(Section 2) would consume.  No software ever touches the profile.

The program is an interpreter-style mix: an array scan whose contents
are dominated by a few hot values, plus a dispatch loop.
"""

from repro.core import IntervalSpec, ProfilerConfig, best_multi_hash
from repro.core.tuples import EventKind
from repro.profiling import ProfilingSession, trace_events
from repro.simulator import Machine, mixed_program


def main() -> None:
    program = mixed_program(array_size=96, num_handlers=6, iterations=40,
                            seed=11)
    print(f"assembled program: {len(program)} instructions")

    # One instrumented run records the tuple trace (the ATOM step)...
    trace = trace_events(program, EventKind.VALUE)
    print(f"executed; observed {len(trace)} load-value events")

    # ...then the trace replays into the hardware profiler.  Interval
    # length is chosen so the run spans several profile intervals.
    spec = IntervalSpec(length=2_000, threshold=0.02)
    config = best_multi_hash(spec, total_entries=512)
    result = ProfilingSession(config, keep_profiles=True).run(trace)

    print(f"profiled {result.summary.num_intervals} intervals "
          f"({spec.length:,} events @ {100 * spec.threshold:g}%)")
    print(f"net error vs perfect profile: {result.summary.percent():.2f}%")

    profile = result.single().profiles[0]
    print("\nfrequent <load PC, value> tuples (first interval):")
    for (pc, value), count in sorted(profile.candidates.items(),
                                     key=lambda kv: -kv[1])[:8]:
        print(f"  pc={pc:#07x} value={value:<12d} count={count}")

    # Cross-check against the simulator's ground truth: the hot values
    # planted in the program's data should dominate the profile.
    machine = Machine(program)
    machine.run()
    print(f"\nsimulator statistics: {machine.state.instructions} "
          f"instructions, {machine.state.loads} loads, "
          f"{machine.state.branches} branches")


if __name__ == "__main__":
    main()
